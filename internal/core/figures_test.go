package core

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/planetlab"
	"repro/internal/sim"
)

// All scenario tests run scaled-down versions of the paper's setups: the
// shapes must hold at small scale even though the absolute statistics are
// noisier. Every test is t.Parallel(): each scenario is an independent
// simulated world, so the suite's wall clock is bounded by the slowest
// test on multi-core hardware.

func TestRunFigure2ShowsSubRTTBurstiness(t *testing.T) {
	t.Parallel()
	res, err := RunFigure2(Fig2Config{
		Seed:     1,
		Flows:    16,
		Duration: 15 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops < 20 {
		t.Fatalf("only %d drops", res.Drops)
	}
	r := res.Report
	// The paper's headline: >95% of losses within 0.01 RTT, and a process
	// far burstier than Poisson. At small scale we demand 80%/0.01 RTT, a
	// clearly super-exponential interval distribution (CoV ≫ 1; an
	// exponential has CoV = 1 at any rate), over-dispersed counts, and at
	// least as much smallest-bin mass as the matched Poisson.
	if r.FracBelow001 < 0.8 {
		t.Fatalf("frac<0.01RTT = %v; losses not clustered", r.FracBelow001)
	}
	if r.CoV < 2 {
		t.Fatalf("interval CoV = %v; not burstier than Poisson", r.CoV)
	}
	if r.IndexOfDispersion < 5 {
		t.Fatalf("IoD = %v", r.IndexOfDispersion)
	}
	// At very high loss rates both distributions concentrate in bin 0, so
	// only demand near-parity there; CoV and IoD carry the burstiness
	// distinction at any rate.
	if r.BurstinessVsPoisson() < 0.9 {
		t.Fatalf("smallest-bin mass far below Poisson: %v", r.BurstinessVsPoisson())
	}
	if res.Bursts.Bursts == 0 || res.Bursts.MeanSize < 1 {
		t.Fatalf("burst stats: %+v", res.Bursts)
	}
}

// TestRunFigure2Deterministic checks the two reproducibility contracts at
// once: the same config and seed always produce the same world, and a
// sweep's results are byte-identical no matter how many workers ran it.
func TestRunFigure2Deterministic(t *testing.T) {
	t.Parallel()
	cfg := Fig2Config{Seed: 5, Flows: 4, Duration: 6 * sim.Second, Warmup: sim.Second}
	opts := SweepOptions{Replications: 2}

	opts.Workers = 1
	seq, err := SweepFigure2(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par, err := SweepFigure2(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	for k := range seq.Results {
		a, b := seq.Results[k], par.Results[k]
		if a.Drops != b.Drops || a.MeanRTT != b.MeanRTT {
			t.Fatalf("replication %d nondeterministic: %d/%v vs %d/%v",
				k, a.Drops, a.MeanRTT, b.Drops, b.MeanRTT)
		}
		// Streaming sweeps retain no trace; the full report (histogram,
		// reservoir intervals, burst structure) must agree instead.
		if a.Trace != nil || b.Trace != nil {
			t.Fatalf("replication %d retained a trace in streaming mode", k)
		}
		if !reflect.DeepEqual(a.Report, b.Report) || a.Bursts != b.Bursts {
			t.Fatalf("replication %d report diverges across worker counts", k)
		}
		// The rendered artifact — what a human or the paper comparison
		// reads — must be byte-identical too.
		var ra, rb bytes.Buffer
		if err := WritePDF(&ra, a.Report); err != nil {
			t.Fatal(err)
		}
		if err := WritePDF(&rb, b.Report); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
			t.Fatalf("replication %d rendered report diverges", k)
		}
	}
	if !reflect.DeepEqual(seq.Summary, par.Summary) {
		t.Fatalf("aggregate diverges: %+v vs %+v", seq.Summary, par.Summary)
	}
	if seq.Summary.Replications != 2 || seq.Summary.CoV.N != 2 {
		t.Fatalf("summary shape: %+v", seq.Summary)
	}
	if len(seq.Skipped) != 0 || len(seq.Seeds) != 2 {
		t.Fatalf("skips/seeds: %v / %v", seq.Skipped, seq.Seeds)
	}
	// Replication 0 replays the configured seed; replication 1 draws an
	// independent derived seed.
	if seq.Seeds[0] != cfg.Seed || seq.Seeds[1] == cfg.Seed {
		t.Fatalf("replication seeds wrong: %v", seq.Seeds)
	}
	// Replications must differ from each other (independent seeds), or the
	// sweep would be averaging one run with itself.
	if reflect.DeepEqual(seq.Results[0].Report, seq.Results[1].Report) {
		t.Fatal("replications identical; seed derivation broken")
	}
}

// TestFigure2StreamingMatchesBatch pins core's own dual-mode measurement
// (measure.go) the same way the root differential test pins the scenario
// registry's: one figure world run retained+batch and once streaming on
// an arena must agree on every statistic, exactly for the integer-derived
// ones and within float tolerance for the online moments.
func TestFigure2StreamingMatchesBatch(t *testing.T) {
	t.Parallel()
	cfg := Fig2Config{Seed: 3, Flows: 8, Duration: 10 * sim.Second, Warmup: 2 * sim.Second}
	batch, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := runFigure2(cfg, exp.NewArena())
	if err != nil {
		t.Fatal(err)
	}
	if stream.Trace != nil || batch.Trace == nil {
		t.Fatal("trace retention modes wrong")
	}
	if stream.Drops != batch.Drops || stream.Events != batch.Events || stream.Bursts != batch.Bursts {
		t.Fatalf("world diverged:\nstream %+v\nbatch  %+v", stream, batch)
	}
	sr, br := stream.Report, batch.Report
	if sr.N != br.N || sr.Lambda != br.Lambda || sr.KSDistance != br.KSDistance ||
		sr.FracBelow001 != br.FracBelow001 || sr.FracBelow1 != br.FracBelow1 {
		t.Fatalf("exact statistics diverged:\nstream %+v\nbatch  %+v", sr, br)
	}
	if diff := math.Abs(sr.CoV - br.CoV); diff > 1e-9*math.Max(1, br.CoV) {
		t.Fatalf("CoV %v vs %v", sr.CoV, br.CoV)
	}
	if diff := math.Abs(sr.IndexOfDispersion - br.IndexOfDispersion); diff > 1e-9*math.Max(1, br.IndexOfDispersion) {
		t.Fatalf("IoD %v vs %v", sr.IndexOfDispersion, br.IndexOfDispersion)
	}
}

func TestSweepFailsOnlyWhenAllReplicationsFail(t *testing.T) {
	t.Parallel()
	// One simulated second with a ten-second default warmup: every
	// replication records zero drops, so the sweep as a whole must error.
	_, err := SweepFigure2(Fig2Config{Seed: 1, Flows: 2, Duration: sim.Second},
		SweepOptions{Replications: 2, Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "every replication failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunFigure3QuantizedTrace(t *testing.T) {
	t.Parallel()
	res, err := RunFigure3(Fig3Config{
		Seed:          2,
		FlowsPerClass: 2,
		Duration:      15 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops < 10 {
		t.Fatalf("only %d drops", res.Drops)
	}
	// Every recorded timestamp sits on the 1 ms grid.
	for _, e := range res.Trace.Events() {
		if int64(e.At)%int64(sim.Millisecond) != 0 {
			t.Fatalf("unquantized drop at %v", e.At)
		}
	}
	// Burstiness survives quantization (the paper: ≈80% under 0.01 RTT in
	// the emulation; we demand clustering under 0.25 RTT at small scale).
	if res.Report.FracBelow025 < 0.4 {
		t.Fatalf("frac<0.25RTT = %v", res.Report.FracBelow025)
	}
	if res.Report.CoV < 1.5 {
		t.Fatalf("CoV = %v", res.Report.CoV)
	}
}

func TestSweepFigure3Aggregates(t *testing.T) {
	t.Parallel()
	sweep, err := SweepFigure3(Fig3Config{
		Seed:          9,
		FlowsPerClass: 2,
		Duration:      10 * sim.Second,
		Warmup:        3 * sim.Second,
	}, SweepOptions{Replications: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 2 || sweep.Summary.Replications != 2 {
		t.Fatalf("sweep shape: %d results, %+v", len(sweep.Results), sweep.Summary)
	}
	if sweep.Summary.Losses.Mean < 2 {
		t.Fatalf("mean losses %v", sweep.Summary.Losses.Mean)
	}
	if sweep.Summary.CoV.Mean <= 0 {
		t.Fatalf("CoV aggregate: %+v", sweep.Summary.CoV)
	}
}

func TestRunFigure4CampaignShape(t *testing.T) {
	t.Parallel()
	cfg := Fig4Config{
		Seed:     3,
		Paths:    12,
		Duration: 20 * sim.Second,
		Workers:  4,
	}
	res, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PathsMeasured != 12 {
		t.Fatalf("measured %d paths", res.PathsMeasured)
	}
	if res.PathsValidated == 0 || res.PathsAnalyzed == 0 {
		t.Fatalf("validated=%d analyzed=%d", res.PathsValidated, res.PathsAnalyzed)
	}
	r := res.Report
	// Internet shape: substantial sub-RTT clustering, weaker than NS-2
	// (the paper: 40% < 0.01 RTT, 60% < 1 RTT), still ≫ Poisson in the
	// sub-RTT bins.
	if r.FracBelow1 < 0.3 {
		t.Fatalf("frac<1RTT = %v", r.FracBelow1)
	}
	if r.FracBelow001 >= r.FracBelow1 {
		t.Fatal("fraction ordering broken")
	}
	if r.BurstinessVsPoisson() < 2 {
		t.Fatalf("internet burstiness ratio = %v", r.BurstinessVsPoisson())
	}

	// Worker invariance: the sequential campaign renders the same merged
	// artifact byte for byte.
	cfg.Workers = 1
	seq, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WritePDF(&a, res.Report); err != nil {
		t.Fatal(err)
	}
	if err := WritePDF(&b, seq.Report); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("figure 4 aggregate depends on worker count")
	}
	if res.PathsAnalyzed != seq.PathsAnalyzed || res.TotalLosses != seq.TotalLosses {
		t.Fatalf("campaign counters diverge: %+v vs %+v", res, seq)
	}
}

func TestRunFigure7PacingLoses(t *testing.T) {
	t.Parallel()
	res, err := RunFigure7(Fig7Config{
		Seed:          4,
		FlowsPerClass: 8,
		Duration:      15 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deficit <= 0.02 {
		t.Fatalf("pacing deficit = %.1f%%; paper observed ≈17%%", 100*res.Deficit)
	}
	if res.Deficit > 0.8 {
		t.Fatalf("pacing deficit implausibly large: %.1f%%", 100*res.Deficit)
	}
	// Mechanism check: per packet delivered, paced flows detect loss
	// events at least as often — the paper's explanation for the deficit.
	pacedRate := float64(res.PacedCongestionEvents) / float64(res.PacedTotalPkts)
	renoRate := float64(res.NewRenoCongestionEvents) / float64(res.NewRenoTotalPkts)
	if pacedRate < renoRate {
		t.Fatalf("paced per-packet event rate %.2e below newreno %.2e; mechanism broken",
			pacedRate, renoRate)
	}
	if len(res.PacedMbps) == 0 || len(res.NewRenoMbps) == 0 {
		t.Fatal("missing throughput series")
	}
	var buf bytes.Buffer
	if err := WriteFig7(&buf, res, sim.Second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deficit") {
		t.Fatal("fig7 render missing header")
	}
}

func TestSweepFigure7DeficitEstimate(t *testing.T) {
	t.Parallel()
	cfg := Fig7Config{Seed: 10, FlowsPerClass: 2, Duration: 6 * sim.Second}
	seq, err := SweepFigure7(cfg, SweepOptions{Replications: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepFigure7(cfg, SweepOptions{Replications: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("figure 7 sweep depends on worker count")
	}
	if len(seq.Results) != 2 || seq.Deficit.N != 2 {
		t.Fatalf("sweep shape: %d results, %+v", len(seq.Results), seq.Deficit)
	}
}

func TestRunFigure8LatencySurface(t *testing.T) {
	t.Parallel()
	cfg := Fig8Config{
		Seed:       5,
		TotalBytes: 8 << 20, // 8 MB keeps the test quick
		FlowCounts: []int{2, 8},
		RTTs:       []sim.Duration{10 * sim.Millisecond, 200 * sim.Millisecond},
		Runs:       3,
	}
	res := RunFigure8(cfg)
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Mean < 1 {
			t.Fatalf("normalized latency < 1 at %+v", c)
		}
	}
	// Long-RTT transfers are relatively worse (paper: 11–50 s vs 5.39 s
	// bound at 200 ms).
	lo := res.Cell(10*sim.Millisecond, 2)
	hi := res.Cell(200*sim.Millisecond, 2)
	if lo == nil || hi == nil {
		t.Fatal("missing cells")
	}
	if hi.Mean <= lo.Mean {
		t.Fatalf("long-RTT not worse: %v vs %v", hi.Mean, lo.Mean)
	}
	var buf bytes.Buffer
	if err := WriteFig8(&buf, res); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 5 {
		t.Fatalf("fig8 render:\n%s", buf.String())
	}
	if res.Cell(sim.Duration(1), 99) != nil {
		t.Fatal("bogus cell lookup should be nil")
	}
}

func TestRunFigure8WorkerInvariance(t *testing.T) {
	t.Parallel()
	cfg := Fig8Config{
		Seed:       6,
		TotalBytes: 2 << 20,
		FlowCounts: []int{2, 4},
		RTTs:       []sim.Duration{10 * sim.Millisecond, 50 * sim.Millisecond},
		Runs:       2,
	}
	cfg.Workers = 1
	seq := RunFigure8(cfg)
	cfg.Workers = 4
	par := RunFigure8(cfg)
	if !reflect.DeepEqual(seq.Cells, par.Cells) {
		t.Fatalf("latency surface depends on worker count:\n%+v\n%+v", seq.Cells, par.Cells)
	}
}

func TestRunTFRCCompetition(t *testing.T) {
	t.Parallel()
	res, err := RunTFRCCompetition(TFRCCompConfig{
		Seed:          6,
		FlowsPerClass: 4,
		Duration:      15 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper (citing Rhee & Xu): TFRC gets less than TCP.
	if res.Deficit <= 0 {
		t.Fatalf("TFRC beat NewReno: deficit = %.1f%%", 100*res.Deficit)
	}
	if res.TFRCLossRate <= 0 {
		t.Fatal("TFRC never measured loss")
	}
}

func TestRunECNCoverageOrdering(t *testing.T) {
	t.Parallel()
	cfg := ECNCoverageConfig{Seed: 7, Flows: 8, Duration: 10 * sim.Second}
	modes := []ECNMode{ModeDropTail, ModePersistentECN}
	results, err := RunECNComparison(cfg, modes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	dt, pe := results[0], results[1]
	if dt.Mode != ModeDropTail || pe.Mode != ModePersistentECN {
		t.Fatalf("mode order broken: %v, %v", dt.Mode, pe.Mode)
	}
	// The paper's proposal: persistent ECN covers most flows each epoch;
	// DropTail covers few.
	if pe.CoverageFraction <= dt.CoverageFraction {
		t.Fatalf("persistent ECN coverage %.2f not above droptail %.2f",
			pe.CoverageFraction, dt.CoverageFraction)
	}
	if pe.CoverageFraction < 0.5 {
		t.Fatalf("persistent ECN coverage only %.2f", pe.CoverageFraction)
	}
	if pe.AggregatePkts < dt.AggregatePkts/2 {
		t.Fatal("persistent ECN collapsed throughput")
	}
	if pe.FairnessIndex < dt.FairnessIndex-0.1 {
		t.Fatalf("persistent ECN hurt fairness: %.3f vs %.3f",
			pe.FairnessIndex, dt.FairnessIndex)
	}
	// The comparison must match standalone runs exactly — it only
	// parallelizes, never perturbs.
	solo, err := RunECNCoverage(cfg, ModePersistentECN)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo, pe) {
		t.Fatalf("comparison diverges from standalone run:\n%+v\n%+v", solo, pe)
	}
}

func TestWritePDFAndASCII(t *testing.T) {
	t.Parallel()
	res, err := RunFigure2(Fig2Config{Seed: 8, Flows: 4, Duration: 10 * sim.Second,
		Warmup: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePDF(&buf, res.Report); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "frac<0.01RTT") || !strings.Contains(out, "poisson_pdf") {
		t.Fatalf("pdf render:\n%s", out)
	}
	// 100 bins + 2 header lines.
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 102 {
		t.Fatalf("pdf rows = %d", got)
	}
	buf.Reset()
	if err := WriteASCIIPDF(&buf, res.Report, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") || !strings.Contains(buf.String(), "o") {
		t.Fatalf("ascii render:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteASCIIPDF(&buf, res.Report, 0); err != nil { // default rows
		t.Fatal(err)
	}
}

func TestWriteSitesTable(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteSites(&buf, planetlab.Sites()); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 27 {
		t.Fatalf("site rows = %d", got)
	}
}
