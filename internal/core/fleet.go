package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/apps/rft"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/topo"
)

// FleetConfig describes a fleet campaign: many SubSeed-jittered instances
// of the registered scenarios, run across all cores and merged into one
// bounded aggregate. A fleet is a pure function of everything here except
// Shards, which only changes how fast it finishes — the report's
// Fingerprint is byte-identical for any shard count.
type FleetConfig struct {
	// Scenarios names the registered scenarios to cycle through (world i
	// runs Scenarios[i%len]). Empty means every registered scenario, in
	// name order. Each must implement the streaming entry point (all
	// catalog scenarios do) — a fleet never retains traces.
	Scenarios []string
	// Worlds is the fleet size (default 64).
	Worlds int
	// Seed is the fleet's base seed; world i runs with sim.SubSeed(Seed, i).
	Seed int64
	// Duration and Warmup are handed to every world (scenario defaults —
	// 60 s / 10 s — when zero). Short worlds make big fleets: a million
	// flows is thousands of small worlds, not hundreds of huge ones.
	Duration sim.Duration
	Warmup   sim.Duration
	// PktSize is the transport segment size (scenario default when zero).
	PktSize int

	// RateSpan, RTTSpan and LossSpan widen each scenario from a point to a
	// parameter neighborhood: world i draws its topo jitter scales
	// uniformly from [1-span, 1+span], each dimension from its own
	// SubSeed stream of the world seed. Zero (the default) pins that
	// dimension to nominal as an exact no-op. Must lie in [0, 1).
	RateSpan float64
	RTTSpan  float64
	LossSpan float64

	// Shards bounds worker concurrency (0 = GOMAXPROCS, 1 = sequential).
	// Never changes the result, only the wall clock.
	Shards int
}

func (c *FleetConfig) fillDefaults() {
	if c.Worlds == 0 {
		c.Worlds = 64
	}
}

// validate rejects configurations the fleet cannot run.
func (c *FleetConfig) validate() error {
	if c.Worlds < 1 {
		return fmt.Errorf("core: fleet needs at least one world, got %d", c.Worlds)
	}
	for _, s := range []struct {
		name string
		v    float64
	}{{"rate", c.RateSpan}, {"rtt", c.RTTSpan}, {"loss", c.LossSpan}} {
		if s.v < 0 || s.v >= 1 || math.IsNaN(s.v) {
			return fmt.Errorf("core: %s span %v outside [0, 1)", s.name, s.v)
		}
	}
	return nil
}

// Jitter-dimension tags for the per-world scale draws. Negative so they
// can never collide with the non-negative tags scenarios use internally
// on the same world seed (world stream 0, noise 1, network 2, flows
// 1000+i).
const (
	fleetTagRate = -1
	fleetTagRTT  = -2
	fleetTagLoss = -3
)

// jitterScale draws one world's scale for one dimension: uniform in
// [1-span, 1+span] from the dimension's own SubSeed stream, so enabling
// or widening one span never shifts another dimension's draws. A zero
// span returns exactly 1 — the scale path is skipped entirely.
func jitterScale(seed, tag int64, span float64) float64 {
	if span == 0 {
		return 1
	}
	u := sim.NewRand(sim.SubSeed(seed, tag)).Float64()
	return 1 + span*(2*u-1)
}

// FleetReport is the outcome of a fleet campaign. Every field except
// Elapsed and EventsPerSec is deterministic — a pure function of the
// FleetConfig minus Shards — and Fingerprint renders exactly those
// fields, so equality of fingerprints is the shard-invariance check.
type FleetReport struct {
	// Scenarios is the resolved scenario cycle.
	Scenarios []string
	// Worlds is the number of worlds merged into the aggregate; Skipped
	// counts worlds whose run failed (typically: too quiet to analyze).
	// SkipSamples retains the first few skip reasons for diagnosis —
	// bounded, like everything else here, regardless of fleet size.
	Worlds      int
	Skipped     int
	SkipSamples []string
	// Flows and Drops total the traffic sources and recorded losses
	// across merged worlds; Events totals the simulated events.
	Flows  int
	Drops  int
	Events uint64
	// Aggregate is the pooled burstiness report (analysis.Aggregate);
	// KSExact reports whether its KS statistic covers every interval.
	Aggregate *analysis.Report
	KSExact   bool
	// Bursts pools the per-world RTT-clustered loss bursts.
	Bursts analysis.BurstStats
	// Transfers pools the reliable-file-transfer outcomes of every merged
	// world that ran FlowRFT flows (nil when none did): the FCT sample and
	// moments a fleet reports percentiles over millions of transfers from.
	Transfers *rft.TransferAgg
	// CoVMin and CoVMax bound the per-world CoV across merged worlds —
	// the spread the pooled CoV summarizes.
	CoVMin, CoVMax float64
	// Elapsed is the wall-clock time of the campaign and EventsPerSec
	// the aggregate simulated-event throughput (Events / Elapsed) —
	// the BENCH_5 headline. Excluded from Fingerprint.
	Elapsed      time.Duration
	EventsPerSec float64
}

// foldFloat mixes a float64 into an FNV-style fingerprint fold,
// bit-exactly.
func foldFloat(h uint64, x float64) uint64 {
	return (h ^ math.Float64bits(x)) * 1099511628211
}

// Fingerprint renders the report's deterministic fields, hashing the
// bulky vectors (histogram bins, reservoir intervals) bit-exactly. Two
// runs of the same FleetConfig produce equal fingerprints for ANY shard
// counts — the fleet analogue of the sweep worker-count invariance —
// and the shard-invariance test pins exactly that.
func (r *FleetReport) Fingerprint() string {
	a := r.Aggregate
	var hh, ih uint64 = 14695981039346656037, 14695981039346656037
	for i := 0; i < a.Hist.NumBins(); i++ {
		hh = (hh ^ uint64(a.Hist.Count(i))) * 1099511628211
	}
	for _, v := range a.Intervals {
		ih = foldFloat(ih, v)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenarios=%s worlds=%d skipped=%d flows=%d drops=%d events=%d\n",
		strings.Join(r.Scenarios, ","), r.Worlds, r.Skipped, r.Flows, r.Drops, r.Events)
	fmt.Fprintf(&b, "n=%d rtt=%v lambda=%v frac001=%v frac025=%v frac1=%v\n",
		a.N, a.RTT, a.Lambda, a.FracBelow001, a.FracBelow025, a.FracBelow1)
	fmt.Fprintf(&b, "iod=%v cov=%v covmin=%v covmax=%v ks=%v ksexact=%v rejects=%v\n",
		a.IndexOfDispersion, a.CoV, r.CoVMin, r.CoVMax, a.KSDistance, r.KSExact, a.RejectsPoisson)
	fmt.Fprintf(&b, "bursts=%d meansize=%v meanflows=%v maxsize=%d singleton=%v\n",
		r.Bursts.Bursts, r.Bursts.MeanSize, r.Bursts.MeanFlows, r.Bursts.MaxSize, r.Bursts.SingletonFrac)
	fmt.Fprintf(&b, "hist=%d:%016x intervals=%d:%016x\n",
		a.Hist.Total(), hh, len(a.Intervals), ih)
	if t := r.Transfers; t != nil {
		var sh uint64 = 14695981039346656037
		for _, v := range t.Sample.Items() {
			sh = foldFloat(sh, v)
		}
		fmt.Fprintf(&b, "transfers=%d bytes=%d fctmean=%v sent=%d retrans=%d sample=%d:%016x\n",
			t.Transfers, t.Bytes, t.FCT.Mean, t.Sent, t.Retransmitted, len(t.Sample.Items()), sh)
	}
	return b.String()
}

// RunFleet executes a fleet campaign: Worlds scenario instances, each on
// its own SubSeed with its own jitter draws, run across Shards workers on
// pooled arenas and merged in world order through analysis.Aggregate —
// the exp.Fleet turnstile keeps memory bounded by the shard count and the
// result invariant to it. A world that fails to produce an analyzable
// loss trace is counted in Skipped, not fatal; RunFleet errors only when
// configuration is invalid or every world was skipped.
func RunFleet(cfg FleetConfig) (*FleetReport, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	names := cfg.Scenarios
	if len(names) == 0 {
		names = topo.Names()
	}
	scs := make([]topo.Scenario, len(names))
	for i, name := range names {
		sc, ok := topo.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("core: unknown scenario %q (registered: %s)",
				name, strings.Join(topo.Names(), ", "))
		}
		if sc.RunIn == nil {
			return nil, fmt.Errorf("core: scenario %q has no streaming entry point; fleets never retain traces", name)
		}
		scs[i] = sc
	}

	rep := &FleetReport{Scenarios: names, CoVMin: math.Inf(1), CoVMax: math.Inf(-1)}
	agg := analysis.NewAggregate(analysis.Config{})
	var bursts analysis.BurstAgg
	var skipErrs []error

	start := time.Now()
	err := exp.Fleet(exp.FleetOptions{Seed: cfg.Seed, Shards: cfg.Shards}, cfg.Worlds,
		func(i int, seed int64, a *exp.Arena) (*topo.ScenarioResult, error) {
			c := topo.ScenarioConfig{
				Seed:      seed,
				Duration:  cfg.Duration,
				Warmup:    cfg.Warmup,
				PktSize:   cfg.PktSize,
				RateScale: jitterScale(seed, fleetTagRate, cfg.RateSpan),
				RTTScale:  jitterScale(seed, fleetTagRTT, cfg.RTTSpan),
				LossScale: jitterScale(seed, fleetTagLoss, cfg.LossSpan),
			}
			return scs[i%len(scs)].RunIn(c, a)
		},
		func(i int, seed int64, v *topo.ScenarioResult, err error) error {
			if err != nil {
				rep.Skipped++
				// Keep a bounded sample of reasons; the count is complete.
				if len(rep.SkipSamples) < 8 {
					rep.SkipSamples = append(rep.SkipSamples,
						fmt.Sprintf("world %d (%s, seed %d): %v", i, scs[i%len(scs)].Name, seed, err))
					skipErrs = append(skipErrs, err)
				}
				return nil
			}
			if v.Analyzer == nil {
				return fmt.Errorf("core: world %d (%s) ran streaming but returned no analyzer", i, scs[i%len(scs)].Name)
			}
			// The analyzer points into the worker's arena; absorb it here,
			// on the worker goroutine, before the arena's next world.
			if err := agg.Absorb(v.Analyzer); err != nil {
				return fmt.Errorf("core: world %d (%s): %w", i, scs[i%len(scs)].Name, err)
			}
			bursts.Add(v.Bursts)
			// Transfer aggregates are detached values; the world-order
			// turnstile makes this merge shard-invariant like the rest.
			if v.Transfers != nil {
				if rep.Transfers == nil {
					rep.Transfers = rft.NewTransferAgg()
				}
				rep.Transfers.Merge(v.Transfers)
			}
			rep.Worlds++
			rep.Flows += v.Flows
			rep.Drops += v.Drops
			rep.Events += v.Events
			rep.CoVMin = math.Min(rep.CoVMin, v.Report.CoV)
			rep.CoVMax = math.Max(rep.CoVMax, v.Report.CoV)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if rep.Worlds == 0 {
		return nil, fmt.Errorf("core: every fleet world was skipped: %w", errors.Join(skipErrs...))
	}
	pooled, err := agg.Finalize()
	if err != nil {
		return nil, err
	}
	rep.Aggregate = pooled.Clone() // detach from the aggregate's scratch
	rep.KSExact = agg.KSExact()
	rep.Bursts = bursts.Stats()
	rep.Elapsed = time.Since(start)
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.EventsPerSec = float64(rep.Events) / secs
	}
	return rep, nil
}

// WriteFleet renders a fleet report: the campaign totals and throughput,
// then the pooled burstiness headline in the same vocabulary as WritePDF.
func WriteFleet(w io.Writer, r *FleetReport) error {
	a := r.Aggregate
	if _, err := fmt.Fprintf(w,
		"# fleet worlds=%d skipped=%d scenarios=%d flows=%d drops=%d events=%d elapsed=%.2fs events_per_sec=%.3g\n",
		r.Worlds, r.Skipped, len(r.Scenarios), r.Flows, r.Drops, r.Events,
		r.Elapsed.Seconds(), r.EventsPerSec); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"# losses=%d lambda=%.3f/RTT frac<0.01RTT=%.3f frac<0.25RTT=%.3f frac<1RTT=%.3f iod=%.1f cov=%.1f cov_range=[%.1f,%.1f] ks=%.3f ks_exact=%v rejects_poisson=%v\n",
		a.N, a.Lambda, a.FracBelow001, a.FracBelow025, a.FracBelow1,
		a.IndexOfDispersion, a.CoV, r.CoVMin, r.CoVMax,
		a.KSDistance, r.KSExact, a.RejectsPoisson); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"# bursts=%d mean_size=%.2f mean_flows=%.2f max_size=%d singleton_frac=%.3f\n",
		r.Bursts.Bursts, r.Bursts.MeanSize, r.Bursts.MeanFlows,
		r.Bursts.MaxSize, r.Bursts.SingletonFrac); err != nil {
		return err
	}
	if t := r.Transfers; t != nil {
		if _, err := fmt.Fprintf(w,
			"# transfers=%d fct_p50=%.0fms fct_p95=%.0fms fct_p99=%.0fms goodput=%.2fMbps retrans_ratio=%.4f\n",
			t.Transfers, t.FCTQuantile(0.50)*1e3, t.FCTQuantile(0.95)*1e3, t.FCTQuantile(0.99)*1e3,
			t.Goodput.Mean/1e6, t.RetransRatio()); err != nil {
			return err
		}
	}
	for _, s := range r.SkipSamples {
		if _, err := fmt.Fprintf(w, "# skipped: %s\n", s); err != nil {
			return err
		}
	}
	return nil
}
