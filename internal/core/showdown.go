package core

import (
	"fmt"
	"io"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/topo/scenarios"
)

// ShowdownCell aggregates one transport family's metrics on one showdown
// world across replications (plain means).
type ShowdownCell struct {
	GoodputBps     float64
	InducedDelayMs float64
	Drops          float64
	RecoveryMs     float64
}

// ShowdownRow is one world's loss-based vs delay-based comparison.
type ShowdownRow struct {
	Scenario string
	Loss     ShowdownCell // every flow loss-based (TCP)
	Delay    ShowdownCell // every flow delay-based (GCC)
}

// ShowdownResult is the loss-vs-delay showdown figure: for each
// time-varying world, the same seeds run once with every flow loss-based
// and once with every flow delay-based.
type ShowdownResult struct {
	Rows         []ShowdownRow
	Replications int
	// Events sums the simulated event counts of every world in the sweep.
	Events uint64
}

// SweepShowdown runs the loss-vs-delay showdown: each showdown shape
// (scenarios.ShowdownShapes) is run with all-TCP flows and with all-GCC
// flows, paired so both transport families of one replication face the
// same world seed — identical link dynamics, wire loss and background
// noise. Replication 0 replays cfg.Seed; like every sweep, the result is
// a pure function of (cfg, Replications) regardless of Workers.
func SweepShowdown(cfg topo.ScenarioConfig, opts SweepOptions) (*ShowdownResult, error) {
	cfg.FillDefaults()
	opts.fillDefaults()
	shapes := scenarios.ShowdownShapes()
	kinds := []topo.FlowKind{topo.FlowTCP, topo.FlowGCC}

	type cell struct {
		shape int
		kind  topo.FlowKind
		rep   int
	}
	var items []cell
	for si := range shapes {
		for _, k := range kinds {
			for r := 0; r < opts.Replications; r++ {
				items = append(items, cell{shape: si, kind: k, rep: r})
			}
		}
	}

	results := exp.SweepArena(exp.Options{Seed: cfg.Seed, Workers: opts.Workers}, items,
		func(run exp.Run[cell], a *exp.Arena) (*scenarios.ShowdownMetrics, error) {
			c := cfg
			// The seed depends only on the replication index, never the
			// transport kind: the pairing that makes the comparison
			// controlled.
			c.Seed = replicationSeed(cfg.Seed, run.Config.rep, sim.SubSeed(cfg.Seed, int64(run.Config.rep)))
			return scenarios.RunShowdownWorld(shapes[run.Config.shape], run.Config.kind, c, a)
		})
	vals, err := exp.Values(results)
	if err != nil {
		return nil, fmt.Errorf("core: showdown: %w", err)
	}

	res := &ShowdownResult{Replications: opts.Replications}
	i := 0
	for si := range shapes {
		row := ShowdownRow{Scenario: shapes[si].Name}
		for _, k := range kinds {
			var agg ShowdownCell
			for r := 0; r < opts.Replications; r++ {
				m := vals[i]
				i++
				res.Events += m.Events
				agg.GoodputBps += m.GoodputBps
				agg.InducedDelayMs += m.InducedDelayMs
				agg.Drops += float64(m.Drops)
				agg.RecoveryMs += m.RecoveryMs
			}
			n := float64(opts.Replications)
			agg.GoodputBps /= n
			agg.InducedDelayMs /= n
			agg.Drops /= n
			agg.RecoveryMs /= n
			if k == topo.FlowGCC {
				row.Delay = agg
			} else {
				row.Loss = agg
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteShowdown renders the showdown figure: per world, the loss-based and
// delay-based transports' goodput, self-induced queueing delay, middle-hop
// drops and loss-episode recovery time.
func WriteShowdown(w io.Writer, r *ShowdownResult) error {
	if _, err := fmt.Fprintf(w, "loss-based vs delay-based congestion control (%d replications)\n",
		r.Replications); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-16s %-10s %12s %14s %8s %12s\n",
		"scenario", "transport", "goodput", "induced-delay", "drops", "recovery"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		cells := []struct {
			name string
			c    ShowdownCell
		}{
			{"loss/tcp", row.Loss},
			{"delay/gcc", row.Delay},
		}
		for j, cl := range cells {
			name := row.Scenario
			if j > 0 {
				name = ""
			}
			if _, err := fmt.Fprintf(w, "%-16s %-10s %9.2f Mbps %11.1f ms %8.1f %9.0f ms\n",
				name, cl.name,
				cl.c.GoodputBps/1e6, cl.c.InducedDelayMs, cl.c.Drops, cl.c.RecoveryMs); err != nil {
				return err
			}
		}
	}
	return nil
}
