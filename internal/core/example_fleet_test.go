package core

import (
	"fmt"

	"repro/internal/sim"
)

// ExampleRunFleet runs a small eight-world fleet — every world a jittered
// dumbbell — and prints the deterministic campaign totals. The same
// numbers come out for any Shards value; only the wall clock changes.
func ExampleRunFleet() {
	rep, err := RunFleet(FleetConfig{
		Scenarios: []string{"dumbbell"},
		Worlds:    8,
		Seed:      1,
		Duration:  6 * sim.Second,
		Warmup:    2 * sim.Second,
		RateSpan:  0.2,
		RTTSpan:   0.2,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("worlds=%d flows=%d drops=%d bursty=%v ks_exact=%v\n",
		rep.Worlds, rep.Flows, rep.Drops, rep.Aggregate.CoV > 1, rep.KSExact)
	// Output: worlds=8 flows=528 drops=44646 bursty=true ks_exact=true
}
