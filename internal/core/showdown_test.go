package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// showdownCfg covers one full dilated cellular trace loop (120 s) plus
// warmup, so every fade depth and recovery in the schedule contributes to
// the comparison.
var showdownCfg = topo.ScenarioConfig{
	Seed:     5,
	Duration: 125 * sim.Second,
	Warmup:   5 * sim.Second,
}

// TestShowdownDelayBeatsLoss is the headline acceptance: on both
// time-varying worlds the delay-based controller sustains at least the
// loss-based controller's throughput at lower self-induced queueing delay.
// The wifi world gets there through Gilbert–Elliott wire loss (TCP halves
// on random bursts; GCC's backstop ignores sub-2% loss), the cellular
// world through the same mechanism on a trace-driven fading link.
func TestShowdownDelayBeatsLoss(t *testing.T) {
	t.Parallel()
	res, err := SweepShowdown(showdownCfg, SweepOptions{Replications: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want wifi-gilbert and cellular-trace", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Delay.GoodputBps < row.Loss.GoodputBps {
			t.Errorf("%s: delay-based goodput %.2f Mbps below loss-based %.2f Mbps",
				row.Scenario, row.Delay.GoodputBps/1e6, row.Loss.GoodputBps/1e6)
		}
		if row.Delay.InducedDelayMs >= row.Loss.InducedDelayMs {
			t.Errorf("%s: delay-based induced delay %.1f ms not below loss-based %.1f ms",
				row.Scenario, row.Delay.InducedDelayMs, row.Loss.InducedDelayMs)
		}
		if row.Delay.GoodputBps <= 0 || row.Loss.GoodputBps <= 0 {
			t.Errorf("%s: empty cell: %+v", row.Scenario, row)
		}
	}
}

// TestShowdownWorkerInvariance: the showdown sweep is a pure function of
// (cfg, Replications) regardless of how many workers ran it.
func TestShowdownWorkerInvariance(t *testing.T) {
	t.Parallel()
	cfg := showdownCfg
	cfg.Duration = 20 * sim.Second // invariance needs no full loop
	seq, err := SweepShowdown(cfg, SweepOptions{Replications: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepShowdown(cfg, SweepOptions{Replications: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("showdown depends on worker count:\n%+v\nvs\n%+v", seq, par)
	}
}

// TestWriteShowdown pins the artifact's shape: a header line plus one
// loss/tcp and one delay/gcc line per scenario.
func TestWriteShowdown(t *testing.T) {
	t.Parallel()
	cfg := showdownCfg
	cfg.Duration = 20 * sim.Second
	res, err := SweepShowdown(cfg, SweepOptions{Replications: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteShowdown(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"wifi-gilbert", "cellular-trace", "loss/tcp", "delay/gcc", "Mbps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("artifact missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "delay/gcc"); got != 2 {
		t.Fatalf("delay/gcc rows = %d, want 2", got)
	}
}
