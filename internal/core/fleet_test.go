package core

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/sim"
)

// fleetTestConfig is a small-but-real campaign: two scenarios, jitter on
// every dimension, worlds short enough to keep the test fast.
func fleetTestConfig(worlds int) FleetConfig {
	return FleetConfig{
		Scenarios: []string{"dumbbell", "access-tree"},
		Worlds:    worlds,
		Seed:      7,
		Duration:  8 * sim.Second,
		Warmup:    2 * sim.Second,
		RateSpan:  0.2,
		RTTSpan:   0.3,
		LossSpan:  0.5,
	}
}

// TestFleetShardInvariance pins the tentpole determinism claim: the same
// campaign produces a byte-identical fingerprint whether it runs on 1, 4
// or 16 shards — merges always happen in world order, so even the
// order-sensitive statistics (reservoir, float accumulation) agree.
func TestFleetShardInvariance(t *testing.T) {
	var want string
	for _, shards := range []int{1, 4, 16} {
		cfg := fleetTestConfig(10)
		cfg.Shards = shards
		rep, err := RunFleet(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		fp := rep.Fingerprint()
		if shards == 1 {
			want = fp
			if rep.Worlds == 0 || rep.Drops == 0 || rep.Flows == 0 {
				t.Fatalf("degenerate fleet: %+v", rep)
			}
			if rep.Aggregate.CoV <= 1 {
				t.Errorf("pooled CoV = %v, want the paper's >1 burstiness", rep.Aggregate.CoV)
			}
			if rep.CoVMin > rep.Aggregate.CoV || rep.CoVMax < rep.Aggregate.CoV {
				// Not a theorem, but with these worlds the pooled CoV sits
				// inside the per-world range; a violation means the merge
				// mixed up its moments.
				t.Errorf("pooled CoV %v outside per-world range [%v, %v]",
					rep.Aggregate.CoV, rep.CoVMin, rep.CoVMax)
			}
		} else if fp != want {
			t.Errorf("shards=%d fingerprint differs from sequential:\n%s\nvs\n%s", shards, fp, want)
		}
	}
}

// TestFleetJitterChangesWorlds pins that the spans do something: the same
// fleet with jitter disabled produces a different drop total. (With all
// spans zero every config is golden-nominal, so this also exercises the
// exact no-op path under the fleet driver.)
func TestFleetJitterChangesWorlds(t *testing.T) {
	jittered, err := RunFleet(fleetTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleetTestConfig(4)
	cfg.RateSpan, cfg.RTTSpan, cfg.LossSpan = 0, 0, 0
	nominal, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jittered.Fingerprint() == nominal.Fingerprint() {
		t.Fatal("jitter spans had no effect on the fleet")
	}
}

// TestFleetBoundedMemory pins the memory contract: the live heap after a
// fleet does not grow with the world count, because each world's analyzer
// is absorbed into the bounded aggregate before its arena is recycled. An
// 8x bigger fleet must not retain measurably more than a small one.
func TestFleetBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleets")
	}
	heapAfter := func(worlds int) uint64 {
		cfg := fleetTestConfig(worlds)
		cfg.Shards = 2
		rep, err := RunFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runtime.KeepAlive(rep)
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	small := heapAfter(4)
	big := heapAfter(32)
	// Generous slack: arenas/pools grow with shard count and warmup, not
	// world count; 16 MiB of drift is still an order of magnitude below
	// what retaining 28 extra worlds' analyzers would cost.
	const slack = 16 << 20
	if big > small+slack {
		t.Fatalf("heap grew with fleet size: %d worlds → %d B, %d worlds → %d B",
			4, small, 32, big)
	}
}

// TestFleetAllWorldsSkipped pins the all-quiet error path: worlds whose
// run ends before the warmup produce no analyzable drops, each counts as
// skipped, and a fleet with nothing absorbed reports why.
func TestFleetAllWorldsSkipped(t *testing.T) {
	cfg := FleetConfig{
		Scenarios: []string{"dumbbell"},
		Worlds:    3,
		Duration:  200 * sim.Millisecond, // ends before the default 10 s warmup
	}
	_, err := RunFleet(cfg)
	if err == nil || !strings.Contains(err.Error(), "every fleet world was skipped") {
		t.Fatalf("err = %v, want the all-skipped diagnosis", err)
	}
}

// TestFleetConfigValidation pins the rejection of unusable configs.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := RunFleet(FleetConfig{Worlds: -1}); err == nil {
		t.Error("negative world count accepted")
	}
	if _, err := RunFleet(FleetConfig{Worlds: 1, RateSpan: 1.0}); err == nil {
		t.Error("rate span 1.0 accepted (would allow zero-rate links)")
	}
	if _, err := RunFleet(FleetConfig{Worlds: 1, LossSpan: -0.1}); err == nil {
		t.Error("negative span accepted")
	}
	if _, err := RunFleet(FleetConfig{Worlds: 1, Scenarios: []string{"no-such"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("unknown scenario: err = %v", err)
	}
}
