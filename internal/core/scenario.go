package core

import (
	"fmt"
	"strings"

	"repro/internal/exp"
	"repro/internal/topo"

	// Populate the scenario registry: every catalog entry becomes
	// runnable through RunScenario and `paperexp -scenario`.
	_ "repro/internal/topo/scenarios"
)

// RunScenario executes one registered topology scenario by name, in
// retain/batch mode (the result carries the raw trace). An unknown name
// returns an error listing the available scenarios.
func RunScenario(name string, cfg topo.ScenarioConfig) (*ScenarioResult, error) {
	sc, ok := topo.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown scenario %q (registered: %s)",
			name, strings.Join(topo.Names(), ", "))
	}
	res, err := sc.Run(cfg)
	if err != nil {
		return nil, err
	}
	return convertScenarioResult(res), nil
}

func convertScenarioResult(res *topo.ScenarioResult) *ScenarioResult {
	return &ScenarioResult{
		Report:    res.Report,
		Trace:     res.Trace,
		MeanRTT:   res.MeanRTT,
		Bursts:    res.Bursts,
		Drops:     res.Drops,
		Events:    res.Events,
		Forwarded: res.Forwarded,
	}
}

// SweepScenario replicates a registered scenario across derived seeds,
// exactly like SweepFigure2 replicates the NS-2 figure: replication 0
// replays cfg.Seed, later replications draw SubSeed streams, and the
// result is bit-identical for any worker count. Scenarios that implement
// the streaming entry point (all catalog scenarios do) run on per-worker
// arenas, analyzing losses online without retaining traces.
func SweepScenario(name string, cfg topo.ScenarioConfig, opts SweepOptions) (*ScenarioSweep, error) {
	sc, ok := topo.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown scenario %q (registered: %s)",
			name, strings.Join(topo.Names(), ", "))
	}
	opts.fillDefaults()
	results := exp.ReplicateArena(exp.Options{Seed: cfg.Seed, Workers: opts.Workers},
		opts.Replications, func(i int, seed int64, a *exp.Arena) (*ScenarioResult, error) {
			c := cfg
			c.Seed = replicationSeed(cfg.Seed, i, seed)
			var res *topo.ScenarioResult
			var err error
			if sc.RunIn != nil {
				res, err = sc.RunIn(c, a)
			} else {
				res, err = sc.Run(c)
			}
			if err != nil {
				return nil, err
			}
			return convertScenarioResult(res), nil
		})
	return collectScenarioSweep(cfg.Seed, results)
}
