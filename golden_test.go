package repro_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden scenario loss traces")

// goldenConfig is the fixed reduced-scale configuration every registered
// scenario is replayed under. The parameters are deliberately small (the
// four runs together take about a second) but long enough past warmup that
// every scenario produces a multi-burst loss trace.
var goldenConfig = topo.ScenarioConfig{
	Seed:     7,
	Duration: 15 * sim.Second,
	Warmup:   3 * sim.Second,
}

// renderGolden serializes a scenario's loss trace exactly: one line per
// drop with the nanosecond timestamp, flow id and sequence number. Any
// change to the engine that alters packet dynamics — event ordering,
// random stream consumption, queue state — shows up as a diff here.
func renderGolden(name string, res *core.ScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# scenario=%s seed=%d duration=%v drops=%d\n",
		name, goldenConfig.Seed, goldenConfig.Duration, res.Drops)
	for _, ev := range res.Trace.Events() {
		fmt.Fprintf(&b, "%d %d %d\n", int64(ev.At), ev.Flow, ev.Seq)
	}
	return b.String()
}

// TestScenarioLossGoldens pins the loss-interval sequence of every
// registered scenario to a checked-in golden file. This is the repo's
// cross-package determinism contract for the simulator core: scheduler,
// queue, transport and topology changes must reproduce these traces
// bit-identically (run with -update only when a behavioural change is
// intended and explained).
func TestScenarioLossGoldens(t *testing.T) {
	names := topo.Names()
	if len(names) < 11 {
		t.Fatalf("scenario registry has %d entries, want at least the 11 catalog scenarios", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := core.RunScenario(name, goldenConfig)
			if err != nil {
				t.Fatalf("RunScenario(%q): %v", name, err)
			}
			got := renderGolden(name, res)
			path := filepath.Join("testdata", "golden", name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run ScenarioLossGoldens -update .`): %v", err)
			}
			if got != string(want) {
				t.Fatalf("scenario %q loss trace diverged from golden %s:\n%s",
					name, path, diffSummary(string(want), got))
			}
		})
	}
}

// diffSummary reports where two golden renderings first diverge, keeping
// failure output readable for multi-thousand-line traces.
func diffSummary(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  golden: %q\n  got:    %q\n(%d vs %d lines total)",
				i+1, wl[i], gl[i], len(wl), len(gl))
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(wl), len(gl))
}
