package repro_test

import (
	"math"
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/topo"

	_ "repro/internal/topo/scenarios"
)

// closeEnough compares two floats with a tight relative tolerance — the
// allowance for the streaming path's different floating-point
// associativity (Welford moments, Σc²-form dispersion).
func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

// TestStreamingMatchesBatch is the differential contract of the streaming
// measurement engine: every registered scenario, run once in retain/batch
// mode (Run) and once in streaming mode (RunIn), must produce the same
// Report — exactly for everything integer-derived (N, histogram counts,
// clustering fractions, the arrival-ordered mean and so Lambda, the KS
// statistic while the reservoir holds the full trace, the burst
// structure), and within float tolerance for the two online moments (CoV,
// index of dispersion).
//
// All four scenarios run on ONE arena in sequence, so the test also
// proves the scratch reset: state leaking from one run into the next
// would break the comparison for whichever scenario runs second.
func TestStreamingMatchesBatch(t *testing.T) {
	cfg := topo.ScenarioConfig{
		Seed:     11,
		Duration: 12 * sim.Second,
		Warmup:   3 * sim.Second,
	}
	arena := exp.NewArena()
	names := topo.Names()
	if len(names) < 4 {
		t.Fatalf("registry has %d scenarios, want ≥ 4", len(names))
	}
	for _, name := range names {
		sc, _ := topo.Lookup(name)
		if sc.RunIn == nil {
			t.Fatalf("scenario %q has no streaming entry point", name)
		}
		t.Run(name, func(t *testing.T) {
			batch, err := sc.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := sc.RunIn(cfg, arena)
			if err != nil {
				t.Fatal(err)
			}

			if stream.Trace != nil {
				t.Fatal("streaming run retained a trace")
			}
			if batch.Trace == nil || batch.Trace.Len() != batch.Drops {
				t.Fatal("batch run lost its trace")
			}
			if stream.Drops != batch.Drops || stream.Events != batch.Events ||
				stream.MeanRTT != batch.MeanRTT {
				t.Fatalf("world diverged: drops %d/%d events %d/%d rtt %v/%v",
					stream.Drops, batch.Drops, stream.Events, batch.Events,
					stream.MeanRTT, batch.MeanRTT)
			}
			if stream.Bursts != batch.Bursts {
				t.Fatalf("burst stats diverged:\nstream %+v\nbatch  %+v",
					stream.Bursts, batch.Bursts)
			}

			sr, br := stream.Report, batch.Report
			if sr.N != br.N || sr.RTT != br.RTT {
				t.Fatalf("N/RTT diverged: %d/%v vs %d/%v", sr.N, sr.RTT, br.N, br.RTT)
			}
			if sr.Lambda != br.Lambda {
				t.Fatalf("Lambda %v != %v", sr.Lambda, br.Lambda)
			}
			if sr.FracBelow001 != br.FracBelow001 || sr.FracBelow025 != br.FracBelow025 ||
				sr.FracBelow1 != br.FracBelow1 {
				t.Fatalf("fractions diverged: %v/%v/%v vs %v/%v/%v",
					sr.FracBelow001, sr.FracBelow025, sr.FracBelow1,
					br.FracBelow001, br.FracBelow025, br.FracBelow1)
			}
			if sr.KSDistance != br.KSDistance || sr.RejectsPoisson != br.RejectsPoisson {
				t.Fatalf("KS diverged: %v/%v vs %v/%v",
					sr.KSDistance, sr.RejectsPoisson, br.KSDistance, br.RejectsPoisson)
			}
			if !closeEnough(sr.CoV, br.CoV) {
				t.Fatalf("CoV %v vs %v beyond tolerance", sr.CoV, br.CoV)
			}
			if !closeEnough(sr.IndexOfDispersion, br.IndexOfDispersion) {
				t.Fatalf("IoD %v vs %v beyond tolerance",
					sr.IndexOfDispersion, br.IndexOfDispersion)
			}

			if sr.Hist.NumBins() != br.Hist.NumBins() || sr.Hist.Total() != br.Hist.Total() ||
				sr.Hist.Overflow != br.Hist.Overflow {
				t.Fatalf("histogram shape diverged")
			}
			for i := 0; i < br.Hist.NumBins(); i++ {
				if sr.Hist.Count(i) != br.Hist.Count(i) {
					t.Fatalf("bin %d: %d != %d", i, sr.Hist.Count(i), br.Hist.Count(i))
				}
				if sr.PoissonPMF[i] != br.PoissonPMF[i] {
					t.Fatalf("poisson bin %d: %v != %v", i, sr.PoissonPMF[i], br.PoissonPMF[i])
				}
			}

			if len(sr.Intervals) != len(br.Intervals) {
				t.Fatalf("interval count %d != %d (reservoir overflowed?)",
					len(sr.Intervals), len(br.Intervals))
			}
			for i := range br.Intervals {
				if sr.Intervals[i] != br.Intervals[i] {
					t.Fatalf("interval %d: %v != %v", i, sr.Intervals[i], br.Intervals[i])
				}
			}
		})
	}
}
