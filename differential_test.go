package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
)

// diffConfig deliberately differs from the golden config (seed and
// duration) so the differential sweep and the goldens pin the batched port
// on independent trajectories.
var diffConfig = topo.ScenarioConfig{
	Seed:     11,
	Duration: 6 * sim.Second,
	Warmup:   1500 * sim.Millisecond,
}

// runScenarioWithPath replays one registered scenario with the port
// implementation pinned to the naive reference or the batched hot path.
// Scenario.Run builds a fresh world (no arena), so the NaivePortPath
// snapshot in NewPort is taken under the flag set here — a differential
// across the flag must never run through the compiled-topology cache,
// which would hand back ports built under the previous flag value.
func runScenarioWithPath(t *testing.T, name string, naive bool) *core.ScenarioResult {
	t.Helper()
	defer func(old bool) { netsim.NaivePortPath = old }(netsim.NaivePortPath)
	netsim.NaivePortPath = naive
	res, err := core.RunScenario(name, diffConfig)
	if err != nil {
		t.Fatalf("RunScenario(%q, naive=%v): %v", name, naive, err)
	}
	return res
}

// TestScenarioDifferential pins the batched port path (delivery rings,
// serialization chains, arming-instant tie-breaks) to the naive
// two-events-per-packet reference across every registered scenario —
// multi-hop chains, RED bottlenecks, Gilbert-Elliott wire-loss bursts and
// mid-chain modulator retunes included. The loss traces must match drop
// for drop at nanosecond resolution: same packets, same timestamps, same
// order. This is a stronger statement than the goldens (which pin one
// configuration) because it holds the two implementations to each other on
// a second, independent trajectory.
func TestScenarioDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep replays every scenario twice")
	}
	for _, name := range topo.Names() {
		t.Run(name, func(t *testing.T) {
			want := runScenarioWithPath(t, name, true)
			got := runScenarioWithPath(t, name, false)
			if want.Drops != got.Drops {
				t.Fatalf("drop count diverged: naive %d, batched %d", want.Drops, got.Drops)
			}
			we, ge := want.Trace.Events(), got.Trace.Events()
			for i := range we {
				if i >= len(ge) || we[i] != ge[i] {
					g := "missing"
					if i < len(ge) {
						g = fmt.Sprintf("%+v", ge[i])
					}
					t.Fatalf("drop %d diverged: naive %+v, batched %s", i, we[i], g)
				}
			}
			if len(ge) > len(we) {
				t.Fatalf("batched recorded %d extra drops", len(ge)-len(we))
			}
			if want.Bursts != got.Bursts {
				t.Fatalf("burst stats diverged: naive %+v, batched %+v", want.Bursts, got.Bursts)
			}
			if got.Events >= want.Events {
				t.Errorf("batched path fired %d events, naive %d: batching saved nothing",
					got.Events, want.Events)
			}
		})
	}
}
